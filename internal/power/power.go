// Package power converts the simulator's raw event counts into the
// normalised power-saving percentages the paper reports. Absolute Watts
// would require Wattch's technology files; every number in the paper's
// evaluation is a percentage saving relative to an uncontrolled baseline,
// so this model works in relative energy units with per-event costs whose
// proportions are calibrated to Wattch-era issue-queue breakdowns
// (wakeup CAM ≈ 55%, payload RAM ≈ 30%, selection ≈ 15% of baseline
// dynamic energy at IPC ≈ 2; see DESIGN.md section 3.5).
//
// Three wakeup-gating accounting schemes reproduce the paper's bars:
// the ungated baseline precharges every operand comparator of every entry
// on every broadcast (2 × 80); "nonEmpty" precharges both operands of
// valid entries only (the paper's nonEmpty bar, after Folegnani &
// González); full gating precharges only waiting operands of valid
// entries (used by every resizing technique).
package power

import "repro/internal/sim"

// Params are the relative per-event energies.
type Params struct {
	// Issue queue dynamic. All terms are per event (Wattch-style cc3
	// accounting: idle structures are clock gated and burn no dynamic
	// power), so low-IPC programs are not dominated by a fixed per-cycle
	// term.
	IQWakeupPerOp      float64 // one operand comparator precharge+compare
	IQReadPerIssue     float64 // payload RAM read at issue
	IQWritePerDispatch float64 // payload RAM write at dispatch
	IQSelectPerIssue   float64 // selection tree work per issued instruction

	// Issue queue static (per cycle).
	IQBankLeak  float64 // per enabled bank
	IQFixedLeak float64 // non-banked leakage (selection, control)

	// Register file dynamic: access energy scales with enabled banks as
	// alpha + (1-alpha) * banksOn/banks (alpha = decoder/bus component).
	RFAccessUnit float64
	RFAlpha      float64

	// Register file static (per cycle).
	RFBankLeak  float64
	RFFixedLeak float64

	// Whole-processor shares (paper section 6: IQ 22%, int RF 11%).
	IQShareOfProcessor float64
	RFShareOfProcessor float64
}

// DefaultParams is the calibrated model.
func DefaultParams() Params {
	return Params{
		IQWakeupPerOp:      1.0,
		IQReadPerIssue:     27,
		IQWritePerDispatch: 27,
		IQSelectPerIssue:   35,
		IQBankLeak:         1.0,
		// 15% of total leakage is non-banked: fixed = 0.15/0.85 * 10 banks.
		IQFixedLeak:        1.76,
		RFAccessUnit:       1.0,
		RFAlpha:            0.2,
		RFBankLeak:         1.0,
		RFFixedLeak:        2.47, // 0.15/0.85 * 14 banks
		IQShareOfProcessor: 0.22,
		RFShareOfProcessor: 0.11,
	}
}

// GatingScheme selects which wakeup population a run is charged for.
type GatingScheme int

// Gating schemes.
const (
	// Ungated: no gating at all — the reference baseline.
	Ungated GatingScheme = iota
	// NonEmpty: empty entries gated (the paper's nonEmpty bar).
	NonEmpty
	// Gated: empty and ready operands gated (Folegnani & González;
	// used by the paper's technique and by abella).
	Gated
)

func wakeups(s *sim.Stats, g GatingScheme) int64 {
	switch g {
	case Ungated:
		return s.IQ.UngatedWakeups
	case NonEmpty:
		return s.IQ.NonEmptyWakeups
	default:
		return s.IQ.GatedWakeups
	}
}

// IQDynamic returns the issue queue's dynamic energy for a run under a
// gating scheme.
func (p Params) IQDynamic(s *sim.Stats, g GatingScheme) float64 {
	return p.IQWakeupPerOp*float64(wakeups(s, g)) +
		p.IQReadPerIssue*float64(s.IQ.Issues) +
		p.IQWritePerDispatch*float64(s.IQ.Dispatches) +
		p.IQSelectPerIssue*float64(s.IQ.Issues)
}

// IQStatic returns the issue queue's leakage energy. allBanksOn charges
// every bank every cycle (the non-resizing baseline cannot gate banks).
func (p Params) IQStatic(s *sim.Stats, banks int, allBanksOn bool) float64 {
	bankCycles := float64(s.IQ.BanksOnSum)
	if allBanksOn {
		bankCycles = float64(banks) * float64(s.Cycles)
	}
	return p.IQBankLeak*bankCycles + p.IQFixedLeak*float64(s.Cycles)
}

// RFDynamic returns the integer register file's dynamic energy. Reads are
// charged with the banks-on population sampled at each read; writes use
// the cycle-average population. gateBanks=false models the baseline file
// that cannot disable banks (every access pays full energy).
func (p Params) RFDynamic(s *sim.Stats, banks int, gateBanks bool) float64 {
	rf := &s.IntRF
	if !gateBanks {
		return p.RFAccessUnit * float64(rf.Reads+rf.Writes)
	}
	nb := float64(banks)
	readEnergy := p.RFAlpha*float64(rf.Reads) +
		(1-p.RFAlpha)*float64(rf.BanksOnReads)/nb
	avgOn := 0.0
	if rf.Cycles > 0 {
		avgOn = float64(rf.BanksOnSum) / float64(rf.Cycles)
	}
	writeEnergy := (p.RFAlpha + (1-p.RFAlpha)*avgOn/nb) * float64(rf.Writes)
	return p.RFAccessUnit * (readEnergy + writeEnergy)
}

// RFStatic returns the integer register file's leakage energy.
func (p Params) RFStatic(s *sim.Stats, banks int, allBanksOn bool) float64 {
	bankCycles := float64(s.IntRF.BanksOnSum)
	if allBanksOn {
		bankCycles = float64(banks) * float64(s.Cycles)
	}
	return p.RFBankLeak*bankCycles + p.RFFixedLeak*float64(s.Cycles)
}

// Savings is one technique's normalised savings versus the baseline run,
// in percent — the quantities of the paper's figures 8, 9, 11 and 12.
type Savings struct {
	IQDynamicPct float64
	IQStaticPct  float64
	RFDynamicPct float64
	RFStaticPct  float64
	// OverallDynamicPct is the whole-processor dynamic saving using the
	// paper's section 6 shares.
	OverallDynamicPct float64
}

func pct(base, tech float64) float64 {
	if base == 0 {
		return 0
	}
	return (1 - tech/base) * 100
}

// Compute returns the savings of a technique run (fully gated, banked)
// against the baseline run (ungated wakeup, all banks always on). Both
// runs must have committed the same instruction budget.
func (p Params) Compute(base, tech *sim.Stats, iqBanks, rfBanks int) Savings {
	s := Savings{
		IQDynamicPct: pct(p.IQDynamic(base, Ungated), p.IQDynamic(tech, Gated)),
		IQStaticPct:  pct(p.IQStatic(base, iqBanks, true), p.IQStatic(tech, iqBanks, false)),
		RFDynamicPct: pct(p.RFDynamic(base, rfBanks, false), p.RFDynamic(tech, rfBanks, true)),
		RFStaticPct:  pct(p.RFStatic(base, rfBanks, true), p.RFStatic(tech, rfBanks, false)),
	}
	s.OverallDynamicPct = p.IQShareOfProcessor*s.IQDynamicPct + p.RFShareOfProcessor*s.RFDynamicPct
	return s
}

// NonEmptySavings returns the paper's nonEmpty bar: the IQ dynamic saving
// of the baseline run re-accounted with empty-entry gating only.
func (p Params) NonEmptySavings(base *sim.Stats) float64 {
	return pct(p.IQDynamic(base, Ungated), p.IQDynamic(base, NonEmpty))
}
