package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Each generator builds a program whose outer loop runs effectively
// forever (the emulator restarts it anyway); the timing simulator cuts
// the run at the instruction budget, mirroring the paper's fixed
// 100M-instruction windows.

const outerTrips = 1 << 30

// Gzip: compression-style inner loops over a byte-ish table — sequential
// loads, shift/mask arithmetic, a short match loop with a predictable
// branch, medium ILP. Expect small IPC loss and solid savings.
func Gzip(seed int64) *prog.Program {
	g := newGen("gzip", seed)
	tab := tableData(g.b, 4096, func(i int64) int64 { return (i*2654435761 + 17) & 0xff })
	g.b.Proc("main").Entry().
		Li(isa.R(1), outerTrips).
		Li(isa.R(26), 0x1E3779B97F4A7C15).
		Label("outer").
		Li(isa.R(2), 256). // window loop count
		Li(isa.R(3), int64(tab)).
		Label("window").
		// Load two table words, hash-combine, store back rotated.
		Ld(isa.R(10), isa.R(3), 0).
		Ld(isa.R(11), isa.R(3), 8).
		Xor(isa.R(12), isa.R(10), isa.R(11)).
		Shli(isa.R(13), isa.R(12), 5).
		Shri(isa.R(14), isa.R(12), 3).
		Or(isa.R(15), isa.R(13), isa.R(14)).
		Add(isa.R(16), isa.R(15), isa.R(10)).
		Andi(isa.R(16), isa.R(16), 0x7fff).
		St(isa.R(16), isa.R(3), 0).
		// Short match-length computation (serial-ish).
		Addi(isa.R(17), isa.R(16), 3).
		Shri(isa.R(18), isa.R(17), 1).
		Add(isa.R(19), isa.R(18), isa.R(11)).
		Addi(isa.R(3), isa.R(3), 16).
		Addi(isa.R(2), isa.R(2), -1).
		Bne(isa.R(2), isa.RZero, "window").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "outer").
		Halt()
	return g.b.MustBuild()
}

// Vpr: doubly nested placement loops with multiply-based cost evaluation;
// the inner recurrence limits ILP moderately.
func Vpr(seed int64) *prog.Program {
	g := newGen("vpr", seed)
	grid := tableData(g.b, 2048, func(i int64) int64 { return i % 97 })
	g.b.Proc("main").Entry().
		Li(isa.R(1), outerTrips).
		Label("outer").
		Li(isa.R(2), 64).
		Li(isa.R(3), int64(grid)).
		Label("rows").
		Li(isa.R(4), 16).
		Label("cols").
		Ld(isa.R(10), isa.R(3), 0).
		Muli(isa.R(11), isa.R(10), 7).
		Ld(isa.R(12), isa.R(3), 64).
		Mul(isa.R(13), isa.R(12), isa.R(10)).
		Add(isa.R(14), isa.R(11), isa.R(13)).
		// Running cost is a loop recurrence through a multiply.
		Add(isa.R(15), isa.R(15), isa.R(14)).
		Muli(isa.R(16), isa.R(15), 3).
		Andi(isa.R(15), isa.R(16), 0xffffff).
		Addi(isa.R(3), isa.R(3), 8).
		Addi(isa.R(4), isa.R(4), -1).
		Bne(isa.R(4), isa.RZero, "cols").
		Addi(isa.R(2), isa.R(2), -1).
		Bne(isa.R(2), isa.RZero, "rows").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "outer").
		Halt()
	return g.b.MustBuild()
}

// Gcc: a large irregular CFG — a dispatch loop over a deep compare-and-
// branch ladder (the bison switch), each case a short distinct block,
// several helper procedures. Many short blocks, many paths: the paper's
// slowest compile and a conservative-analysis stress.
func Gcc(seed int64) *prog.Program {
	g := newGen("gcc", seed)
	const cases = 48
	tab := tableData(g.b, 1024, func(i int64) int64 { return (i * 2654435761) % cases })
	g.b.Proc("main").Entry().
		Li(isa.R(1), outerTrips).
		Label("outer").
		Li(isa.R(2), 512).
		Li(isa.R(3), int64(tab)).
		Label("dispatch").
		Ld(isa.R(10), isa.R(3), 0). // next "statement kind"
		Addi(isa.R(3), isa.R(3), 8)
	// Compare ladder: case i tested in sequence (irregular control).
	for i := 0; i < cases; i++ {
		g.b.Li(isa.R(11), int64(i)).
			Beq(isa.R(10), isa.R(11), fmt.Sprintf("case%d", i))
	}
	g.b.Jmp("next")
	for i := 0; i < cases; i++ {
		g.b.Label(fmt.Sprintf("case%d", i))
		// Each case: a short distinct computation, some call helpers.
		switch i % 4 {
		case 0:
			g.emitALUBurst(3+i%4, 12, 20)
		case 1:
			g.b.Muli(isa.R(12+i%6), isa.R(12+i%6), int64(3+i%5))
			g.emitChain(2, isa.R(18))
		case 2:
			g.b.Call(fmt.Sprintf("helper%d", i%3))
		default:
			g.emitChain(3+i%3, isa.R(13+i%5))
		}
		g.b.Jmp("next")
	}
	g.b.Label("next").
		Addi(isa.R(2), isa.R(2), -1).
		Bne(isa.R(2), isa.RZero, "dispatch").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "outer").
		Halt()
	for h := 0; h < 3; h++ {
		g.b.Proc(fmt.Sprintf("helper%d", h))
		g.emitALUBurst(4+h, 20, 25)
		g.b.Ret()
	}
	return g.b.MustBuild()
}

// Mcf: network-simplex pointer chasing over a working set far larger than
// L2 — serial loads, cache misses dominate, minimal ILP. The queue buys
// nothing here, so the technique's lowest IPC loss is expected.
func Mcf(seed int64) *prog.Program {
	g := newGen("mcf", seed)
	ring := ringData(g.b, 1<<17, 40503) // 1 MiB pointer ring, scattered
	g.b.Proc("main").Entry().
		Li(isa.R(1), outerTrips).
		Li(isa.R(2), int64(ring)).
		Label("outer").
		Li(isa.R(3), 4096).
		Label("chase").
		Ld(isa.R(2), isa.R(2), 0). // node = node->next (serial, no prefetch)
		// A little potential-update arithmetic on the loaded pointer.
		Andi(isa.R(11), isa.R(2), 0xff).
		Slt(isa.R(12), isa.R(11), isa.R(4)).
		Add(isa.R(4), isa.R(4), isa.R(12)).
		Addi(isa.R(3), isa.R(3), -1).
		Bne(isa.R(3), isa.RZero, "chase").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "outer").
		Halt()
	return g.b.MustBuild()
}

// Crafty: bitboard manipulation — long sequences of shifts, masks and
// xors with data-dependent branching on computed bits, and an attack-
// table lookup; branchy with decent ILP between branches.
func Crafty(seed int64) *prog.Program {
	g := newGen("crafty", seed)
	attacks := tableData(g.b, 4096, func(i int64) int64 { return i*0x0101010101010101 ^ (i << 17) })
	g.b.Proc("main").Entry().
		Li(isa.R(1), outerTrips).
		Li(isa.R(26), 0x123456789ABCDEF).
		Label("outer").
		Li(isa.R(2), 512).
		Label("search")
	// Bitboard update burst.
	g.emitXorshift(isa.R(26), isa.R(27))
	g.b.Andi(isa.R(10), isa.R(26), 0xfff).
		Shli(isa.R(11), isa.R(10), 3).
		Li(isa.R(12), int64(attacks)).
		Add(isa.R(12), isa.R(12), isa.R(11)).
		Ld(isa.R(13), isa.R(12), 0).
		And(isa.R(14), isa.R(13), isa.R(26)).
		Or(isa.R(15), isa.R(14), isa.R(10)).
		Xor(isa.R(16), isa.R(15), isa.R(13)).
		// Branch on a raw xorshift bit: genuinely unpredictable.
		Shri(isa.R(17), isa.R(26), 11).
		Andi(isa.R(17), isa.R(17), 1).
		Beq(isa.R(17), isa.RZero, "quiet").
		Addi(isa.R(18), isa.R(18), 1).
		Shli(isa.R(19), isa.R(18), 2).
		Label("quiet").
		Addi(isa.R(2), isa.R(2), -1).
		Bne(isa.R(2), isa.RZero, "search").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "outer").
		Halt()
	return g.b.MustBuild()
}

// Parser: recursive-descent style — a dispatch loop calling per-kind
// parse procedures that themselves call a shared scanner; plenty of
// calls, data-dependent branches, small blocks.
func Parser(seed int64) *prog.Program {
	g := newGen("parser", seed)
	text := tableData(g.b, 2048, func(i int64) int64 { return (i*31 + 7) % 5 })
	g.b.Proc("main").Entry().
		Li(isa.R(1), outerTrips).
		Label("outer").
		Li(isa.R(2), 256).
		Li(isa.R(3), int64(text)).
		Label("sentence").
		Ld(isa.R(10), isa.R(3), 0).
		Addi(isa.R(3), isa.R(3), 8).
		Li(isa.R(11), 2).
		Blt(isa.R(10), isa.R(11), "noun").
		Li(isa.R(11), 4).
		Blt(isa.R(10), isa.R(11), "verb").
		Call("link").
		Jmp("again").
		Label("noun").
		Call("parsenoun").
		Jmp("again").
		Label("verb").
		Call("parseverb").
		Label("again").
		Addi(isa.R(2), isa.R(2), -1).
		Bne(isa.R(2), isa.RZero, "sentence").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "outer").
		Halt()
	g.b.Proc("parsenoun").
		Addi(isa.R(12), isa.R(12), 1).
		Call("scan").
		Add(isa.R(13), isa.R(13), isa.R(12)).
		Ret()
	g.b.Proc("parseverb").
		Addi(isa.R(14), isa.R(14), 2).
		Call("scan").
		Sub(isa.R(15), isa.R(14), isa.R(13)).
		Ret()
	g.b.Proc("link").
		Muli(isa.R(16), isa.R(13), 3).
		Addi(isa.R(16), isa.R(16), 1).
		Ret()
	g.b.Proc("scan").
		Addi(isa.R(17), isa.R(17), 1).
		Andi(isa.R(18), isa.R(17), 0xff).
		Ret()
	return g.b.MustBuild()
}

// Perlbmk: bytecode-interpreter dispatch — load an op, walk a branch
// tree, execute a handler (often via call), repeat. Dispatch overhead and
// calls dominate; NOOP slots are comparatively cheap to hide but hints
// change often.
func Perlbmk(seed int64) *prog.Program {
	g := newGen("perlbmk", seed)
	code := tableData(g.b, 4096, func(i int64) int64 { return (i*i*2654435761 + i) % 8 })
	g.b.Proc("main").Entry().
		Li(isa.R(1), outerTrips).
		Label("outer").
		Li(isa.R(2), 1024).
		Li(isa.R(3), int64(code)).
		Label("fetchop").
		Ld(isa.R(10), isa.R(3), 0).
		Addi(isa.R(3), isa.R(3), 8).
		// Binary dispatch tree over 8 opcodes.
		Li(isa.R(11), 4).
		Blt(isa.R(10), isa.R(11), "lo").
		Li(isa.R(11), 6).
		Blt(isa.R(10), isa.R(11), "op45").
		Call("opstring").
		Jmp("done").
		Label("op45").
		Call("oparith").
		Jmp("done").
		Label("lo").
		Li(isa.R(11), 2).
		Blt(isa.R(10), isa.R(11), "op01").
		Call("ophash").
		Jmp("done").
		Label("op01").
		Addi(isa.R(12), isa.R(12), 1). // inline fast op
		Label("done").
		Addi(isa.R(2), isa.R(2), -1).
		Bne(isa.R(2), isa.RZero, "fetchop").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "outer").
		Halt()
	g.b.Proc("oparith")
	g.emitMulTree(isa.R(13), 14)
	g.b.Ret()
	g.b.Proc("ophash").
		Shli(isa.R(18), isa.R(12), 5).
		Xor(isa.R(18), isa.R(18), isa.R(12)).
		Addi(isa.R(18), isa.R(18), 0x9e37).
		Ret()
	g.b.Proc("opstring")
	g.emitALUBurst(6, 19, 24)
	g.b.Ret()
	return g.b.MustBuild()
}

// Gap: computer-algebra arithmetic — multiply/divide-heavy kernels in
// loops, with helper calls for carries; mixed latencies expose FU
// contention inside one procedure.
func Gap(seed int64) *prog.Program {
	g := newGen("gap", seed)
	bignum := tableData(g.b, 1024, func(i int64) int64 { return i*i + 3 })
	g.b.Proc("main").Entry().
		Li(isa.R(1), outerTrips).
		Label("outer").
		Li(isa.R(2), 128).
		Li(isa.R(3), int64(bignum)).
		Label("limb").
		Ld(isa.R(10), isa.R(3), 0).
		Ld(isa.R(11), isa.R(3), 8).
		Mul(isa.R(12), isa.R(10), isa.R(11)).
		Muli(isa.R(13), isa.R(10), 10007).
		Add(isa.R(14), isa.R(12), isa.R(13)).
		Shri(isa.R(15), isa.R(14), 16). // carry
		Add(isa.R(16), isa.R(16), isa.R(15)).
		St(isa.R(14), isa.R(3), 0).
		Addi(isa.R(3), isa.R(3), 16).
		Addi(isa.R(2), isa.R(2), -1).
		Bne(isa.R(2), isa.RZero, "limb").
		Call("normalize"). // carry normalisation once per limb pass
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "outer").
		Halt()
	g.b.Proc("normalize").
		Andi(isa.R(17), isa.R(16), 0xffff).
		Shri(isa.R(16), isa.R(16), 16).
		Add(isa.R(18), isa.R(17), isa.R(16)).
		Ret()
	return g.b.MustBuild()
}

// Vortex: an object-database workload — long chains of small procedures
// manipulating records, with multiply work straddling the call
// boundaries. Short blocks plus dense calls make inserted NOOPs
// expensive, and cross-call FU contention makes locally-computed hints
// too small: the paper's worst NOOP benchmark, rescued by Extension.
func Vortex(seed int64) *prog.Program {
	g := newGen("vortex", seed)
	// The record table fits in L1 (the benchmark is call-bound, not
	// memory-bound): 512 words = 4KB.
	db := tableData(g.b, 512, func(i int64) int64 { return i ^ (i << 9) })
	g.b.Proc("main").Entry().
		Li(isa.R(1), outerTrips).
		Li(isa.R(5), int64(db)). // table base
		Li(isa.R(4), 0).         // wrapping offset
		Label("outer").
		Li(isa.R(2), 256).
		Label("txn").
		Addi(isa.R(4), isa.R(4), 32).
		Andi(isa.R(4), isa.R(4), 4064).
		Add(isa.R(3), isa.R(5), isa.R(4)).
		// Wide independent record-field updates (high ILP: the dispatch
		// bandwidth matters, so inserted NOOPs cost real slots)...
		Addi(isa.R(16), isa.R(16), 1).
		Xori(isa.R(17), isa.R(17), 0x55).
		Addi(isa.R(18), isa.R(18), 2).
		Shli(isa.R(19), isa.R(19), 1).
		Addi(isa.R(20), isa.R(20), 3).
		Xori(isa.R(21), isa.R(21), 0x0f).
		Call("lookup").
		// ...and multiply work right after the call contends with the
		// callee's multiplies for the 3 Mul units.
		Mul(isa.R(22), isa.R(20), isa.R(21)).
		Muli(isa.R(23), isa.R(22), 7).
		Addi(isa.R(24), isa.R(16), 4).
		Xori(isa.R(25), isa.R(17), 0x33).
		Call("update").
		Add(isa.R(24), isa.R(23), isa.R(22)).
		Addi(isa.R(16), isa.R(16), 1).
		Addi(isa.R(18), isa.R(18), 1).
		Call("commit").
		Addi(isa.R(2), isa.R(2), -1).
		Bne(isa.R(2), isa.RZero, "txn").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "outer").
		Halt()
	g.b.Proc("lookup").
		Ld(isa.R(10), isa.R(3), 0).
		Muli(isa.R(11), isa.R(10), 37).
		Andi(isa.R(12), isa.R(11), 0x1fff).
		Ret()
	g.b.Proc("update").
		Ld(isa.R(13), isa.R(3), 8).
		Mul(isa.R(14), isa.R(13), isa.R(12)).
		St(isa.R(14), isa.R(3), 8).
		Ret()
	g.b.Proc("commit").
		Addi(isa.R(15), isa.R(15), 1).
		St(isa.R(15), isa.R(3), 16).
		Ret()
	return g.b.MustBuild()
}

// Bzip2: block-sorting compression — a sorting-ish loop calling a hot,
// small, multiply-dense comparator; the paper's Improved technique
// (inter-procedural FU contention) recovers precisely this pattern.
func Bzip2(seed int64) *prog.Program {
	g := newGen("bzip2", seed)
	block := tableData(g.b, 4096, func(i int64) int64 { return (i*131 + 29) % 251 })
	g.b.Proc("main").Entry().
		Li(isa.R(1), outerTrips).
		Label("outer").
		Li(isa.R(2), 512).
		Li(isa.R(3), int64(block)).
		Label("sortstep").
		Ld(isa.R(10), isa.R(3), 0).
		Ld(isa.R(11), isa.R(3), 8).
		Call("rank"). // mul-heavy comparator
		// Post-call multiplies contend with the callee's tail.
		Mul(isa.R(14), isa.R(12), isa.R(10)).
		Muli(isa.R(15), isa.R(14), 3).
		Slt(isa.R(16), isa.R(15), isa.R(11)).
		Beq(isa.R(16), isa.RZero, "noswap").
		St(isa.R(11), isa.R(3), 0).
		St(isa.R(10), isa.R(3), 8).
		Label("noswap").
		Addi(isa.R(3), isa.R(3), 16).
		Addi(isa.R(2), isa.R(2), -1).
		Bne(isa.R(2), isa.RZero, "sortstep").
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "outer").
		Halt()
	g.b.Proc("rank").
		// Six multiplies on three units: the comparator saturates the
		// multiplier pipes, so the caller's post-call multiplies queue
		// behind it — the cross-boundary contention Improved models.
		Mul(isa.R(12), isa.R(10), isa.R(11)).
		Muli(isa.R(13), isa.R(10), 2654435761).
		Muli(isa.R(17), isa.R(11), 40503).
		Mul(isa.R(18), isa.R(13), isa.R(17)).
		Muli(isa.R(19), isa.R(11), 97).
		Mul(isa.R(12), isa.R(12), isa.R(18)).
		Shri(isa.R(12), isa.R(12), 7).
		Ret()
	return g.b.MustBuild()
}

// Twolf: place-and-route cost loops with mixed latencies — multiplies,
// an occasional divide, table loads — and moderate branching.
func Twolf(seed int64) *prog.Program {
	g := newGen("twolf", seed)
	cells := tableData(g.b, 2048, func(i int64) int64 { return (i*53)%1009 + 1 })
	g.b.Proc("main").Entry().
		Li(isa.R(1), outerTrips).
		Label("outer").
		Li(isa.R(2), 256).
		Li(isa.R(3), int64(cells)).
		Label("cell").
		Ld(isa.R(10), isa.R(3), 0).
		Ld(isa.R(11), isa.R(3), 8).
		Mul(isa.R(12), isa.R(10), isa.R(11)).
		Muli(isa.R(13), isa.R(12), 45).
		Add(isa.R(14), isa.R(13), isa.R(11)).
		Slt(isa.R(15), isa.R(14), isa.R(16)).
		Beq(isa.R(15), isa.RZero, "keep").
		Mov(isa.R(16), isa.R(14)).
		St(isa.R(16), isa.R(3), 0).
		Label("keep").
		Addi(isa.R(3), isa.R(3), 16).
		Addi(isa.R(2), isa.R(2), -1).
		Bne(isa.R(2), isa.RZero, "cell").
		// Overflow penalty scaling: one long-latency divide per pass.
		Div(isa.R(17), isa.R(16), isa.R(13)).
		Add(isa.R(16), isa.R(16), isa.R(17)).
		Addi(isa.R(1), isa.R(1), -1).
		Bne(isa.R(1), isa.RZero, "outer").
		Halt()
	return g.b.MustBuild()
}
