package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// archSnapshot captures the architectural effect of a run: integer
// registers plus a checksum of the first 64KB of the data segment.
type archSnapshot struct {
	regs [isa.IntRegs]int64
	mem  uint64
}

// runReal executes the program until n real (non-hint) instructions have
// retired and snapshots the architectural state.
func runReal(t *testing.T, p *prog.Program, n int) archSnapshot {
	t.Helper()
	e, err := emu.New(p)
	if err != nil {
		t.Fatal(err)
	}
	e.Restart = true
	executed := 0
	for executed < n {
		d, ok := e.Next()
		if !ok {
			t.Fatal("program halted unexpectedly")
		}
		if d.Op != isa.HintNop {
			executed++
		}
	}
	var s archSnapshot
	for i := 0; i < isa.IntRegs; i++ {
		s.regs[i] = e.IntReg(i)
	}
	for w := uint64(0); w < 8192; w++ {
		addr := p.DataBase + 8*w
		s.mem = s.mem*1099511628211 + uint64(e.Mem().Load(addr))
	}
	return s
}

// TestInstrumentationPreservesSemantics verifies, for every benchmark and
// every instrumentation mode, that the instrumented program computes
// exactly the same architectural state as the original after the same
// number of real instructions — hint NOOPs and tags must be pure
// metadata.
func TestInstrumentationPreservesSemantics(t *testing.T) {
	const window = 30_000
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			want := runReal(t, b.Build(42), window)
			modes := []struct {
				name string
				opt  core.Options
			}{
				{"noop", core.Options{Mode: core.ModeNOOP}},
				{"tag", core.Options{Mode: core.ModeTag}},
				{"improved", core.Options{Mode: core.ModeTag, Improved: true}},
			}
			for _, m := range modes {
				p := b.Build(42)
				if _, err := core.Instrument(p, m.opt); err != nil {
					t.Fatalf("%s: %v", m.name, err)
				}
				got := runReal(t, p, window)
				if got != want {
					t.Errorf("%s: architectural state diverged from baseline", m.name)
				}
			}
		})
	}
}

// TestHintValuesWithinHardwareRange: every dynamic hint must be
// representable in the hardware's max_new_range register (1..capacity).
func TestHintValuesWithinHardwareRange(t *testing.T) {
	for _, b := range Suite() {
		p := b.Build(42)
		if _, err := core.Instrument(p, core.Options{Mode: core.ModeNOOP}); err != nil {
			t.Fatal(err)
		}
		e, err := emu.New(p)
		if err != nil {
			t.Fatal(err)
		}
		e.Restart = true
		for i := 0; i < 20_000; i++ {
			d, ok := e.Next()
			if !ok {
				break
			}
			if d.IsHintCarrier() && (d.Hint < 1 || d.Hint > 80) {
				t.Fatalf("%s: dynamic hint %d out of [1,80]", b.Name, d.Hint)
			}
		}
	}
}
