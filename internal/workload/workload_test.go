package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/sim"
)

func TestSuiteComplete(t *testing.T) {
	s := Suite()
	if len(s) != 11 {
		t.Fatalf("suite has %d benchmarks, want 11 (SPEC2000int minus eon)", len(s))
	}
	names := map[string]bool{}
	for _, b := range s {
		if names[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		names[b.Name] = true
		if b.Description == "" {
			t.Errorf("%s: missing description", b.Name)
		}
	}
	for _, want := range []string{"gzip", "vpr", "gcc", "mcf", "crafty", "parser", "perlbmk", "gap", "vortex", "bzip2", "twolf"} {
		if !names[want] {
			t.Errorf("missing benchmark %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("gzip"); !ok {
		t.Error("gzip not found")
	}
	if _, ok := ByName("eon"); ok {
		t.Error("eon must not exist (C++, excluded by the paper)")
	}
}

func TestAllBenchmarksBuildAndRun(t *testing.T) {
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.Build(42)
			if !p.Linked() {
				t.Fatal("program not linked")
			}
			e, err := emu.New(p)
			if err != nil {
				t.Fatal(err)
			}
			e.Restart = true
			// Must execute 50k instructions without halting or panicking.
			for i := 0; i < 50_000; i++ {
				if _, ok := e.Next(); !ok {
					t.Fatalf("%s halted after %d instructions", b.Name, i)
				}
			}
		})
	}
}

func TestDeterministicGeneration(t *testing.T) {
	for _, b := range Suite() {
		p1 := b.Build(7)
		p2 := b.Build(7)
		if p1.NumInsts() != p2.NumInsts() {
			t.Errorf("%s: non-deterministic generation", b.Name)
		}
	}
}

func TestAllBenchmarksInstrumentable(t *testing.T) {
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.Build(42)
			rep, err := core.Instrument(p, core.Options{Mode: core.ModeNOOP})
			if err != nil {
				t.Fatalf("instrument: %v", err)
			}
			if rep.HintsInserted == 0 {
				t.Error("no hints inserted")
			}
			// The instrumented program must still execute.
			e, err := emu.New(p)
			if err != nil {
				t.Fatal(err)
			}
			e.Restart = true
			hints := 0
			for i := 0; i < 20_000; i++ {
				d, ok := e.Next()
				if !ok {
					t.Fatal("halted")
				}
				if d.Op == isa.HintNop {
					hints++
				}
			}
			if hints == 0 {
				t.Error("no dynamic hints in 20k instructions")
			}
			if hints > 8_000 {
				t.Errorf("hint overhead %d/20000 implausibly high", hints)
			}
		})
	}
}

func TestBenchmarkCharacters(t *testing.T) {
	if testing.Short() {
		t.Skip("character check needs timing runs")
	}
	cfg := sim.DefaultConfig()
	budget := int64(30_000)

	// mcf must be memory-bound: high D-miss rate, low IPC.
	mcf, err := sim.RunProgram(cfg, Mcf(42), budget)
	if err != nil {
		t.Fatal(err)
	}
	if mcf.DL1.MissRate() < 0.2 {
		t.Errorf("mcf DL1 miss rate %.3f, want memory-bound (>0.2)", mcf.DL1.MissRate())
	}
	if mcf.IPC() > 1.0 {
		t.Errorf("mcf IPC %.2f, want < 1 (pointer chasing)", mcf.IPC())
	}

	// gzip must be compute-bound: near-zero misses, much higher IPC.
	gz, err := sim.RunProgram(cfg, Gzip(42), budget)
	if err != nil {
		t.Fatal(err)
	}
	if gz.DL1.MissRate() > 0.05 {
		t.Errorf("gzip DL1 miss rate %.3f, want tiny", gz.DL1.MissRate())
	}
	if gz.IPC() < 2*mcf.IPC() {
		t.Errorf("gzip IPC %.2f not clearly above mcf %.2f", gz.IPC(), mcf.IPC())
	}

	// vortex must be call-dense.
	vt, err := sim.RunProgram(cfg, Vortex(42), budget)
	if err != nil {
		t.Fatal(err)
	}
	if vt.Bpred.RASReturns == 0 {
		t.Error("vortex executed no returns")
	}
	callRate := float64(vt.Bpred.RASReturns) / float64(vt.CommittedReal)
	if callRate < 0.05 {
		t.Errorf("vortex call rate %.3f, want dense calls", callRate)
	}

	// crafty must mispredict more than gzip (data-dependent branches).
	cr, err := sim.RunProgram(cfg, Crafty(42), budget)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Bpred.MispredictRate() <= gz.Bpred.MispredictRate() {
		t.Errorf("crafty mispredict %.3f not above gzip %.3f",
			cr.Bpred.MispredictRate(), gz.Bpred.MispredictRate())
	}
}

func TestGccHasManyBlocks(t *testing.T) {
	p := Gcc(42)
	blocks := 0
	for _, pr := range p.Procs {
		blocks += len(pr.Blocks)
	}
	if blocks < 100 {
		t.Errorf("gcc has %d blocks, want a large irregular CFG (>=100)", blocks)
	}
}
