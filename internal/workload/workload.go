// Package workload generates the benchmark programs for the evaluation.
// The paper runs the SPEC2000 integer suite (minus eon) compiled with
// MachineSUIF; SPEC sources are proprietary and SUIF cannot be rerun
// here, so each benchmark is replaced by a synthetic program *in our ISA*
// whose microarchitectural character mimics its namesake — loop structure,
// ILP profile, call density, control regularity and memory behaviour (see
// DESIGN.md, substitutions). Generators are deterministic in their seed.
package workload

import (
	"math/rand"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Benchmark names one SPECint-like workload.
type Benchmark struct {
	Name string
	// Description states which trait of the original the generator
	// reproduces.
	Description string
	Build       func(seed int64) *prog.Program
}

// Suite returns the paper's benchmark list (SPEC2000int minus eon), in
// the order of the paper's figures.
func Suite() []Benchmark {
	return []Benchmark{
		{"gzip", "loop-dominated compression kernel, sequential access, medium ILP", Gzip},
		{"vpr", "nested placement loops, multiply-heavy inner kernels", Vpr},
		{"gcc", "large irregular control flow, many short blocks and paths", Gcc},
		{"mcf", "pointer-chasing network simplex, memory-bound, low ILP", Mcf},
		{"crafty", "bitboard chess: shifts and masks, branchy search", Crafty},
		{"parser", "recursive-descent linking, data-dependent branches, calls", Parser},
		{"perlbmk", "interpreter dispatch loop, many-way branching, calls", Perlbmk},
		{"gap", "computer-algebra arithmetic kernels with helper calls", Gap},
		{"vortex", "OO database: dense small-procedure call chains", Vortex},
		{"bzip2", "block-sort compression with hot mul-heavy helpers", Bzip2},
		{"twolf", "place-and-route with mixed-latency arithmetic", Twolf},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// --- shared generator helpers ---

// gen wraps a builder with a seeded RNG.
type gen struct {
	b   *prog.Builder
	rng *rand.Rand
}

func newGen(name string, seed int64) *gen {
	return &gen{b: prog.NewBuilder(name), rng: rand.New(rand.NewSource(seed))}
}

// Register conventions used by the generators: r1-r9 loop control and
// addresses, r10-r25 computation, r26-r29 xorshift state and scratch,
// r30-r31 spare. Procedures communicate via r10-r15.

// emitXorshift advances a pseudo-random value in reg using scratch.
func (g *gen) emitXorshift(reg, scratch isa.Reg) {
	g.b.Shli(scratch, reg, 13).Xor(reg, reg, scratch).
		Shri(scratch, reg, 7).Xor(reg, reg, scratch).
		Shli(scratch, reg, 17).Xor(reg, reg, scratch)
}

// emitALUBurst emits n independent single-cycle ops over regs [lo,hi].
func (g *gen) emitALUBurst(n int, lo, hi int) {
	for i := 0; i < n; i++ {
		r := isa.R(lo + g.rng.Intn(hi-lo+1))
		switch g.rng.Intn(4) {
		case 0:
			g.b.Addi(r, r, int64(1+g.rng.Intn(7)))
		case 1:
			g.b.Xori(r, r, int64(g.rng.Intn(255)))
		case 2:
			g.b.Shli(r, r, int64(1+g.rng.Intn(3)))
		default:
			g.b.Andi(r, r, int64(0xffff))
		}
	}
}

// emitChain emits a serial dependence chain of length n on reg.
func (g *gen) emitChain(n int, reg isa.Reg) {
	for i := 0; i < n; i++ {
		g.b.Addi(reg, reg, int64(1+i%3))
	}
}

// emitMulTree emits a small multiply tree: pairs multiplied then combined.
func (g *gen) emitMulTree(dst isa.Reg, lo int) {
	a, b, c, d := isa.R(lo), isa.R(lo+1), isa.R(lo+2), isa.R(lo+3)
	g.b.Mul(a, a, b).Mul(c, c, d).Add(dst, a, c)
}

// ringData builds a pointer ring of n words with the given stride and
// returns its base address.
func ringData(b *prog.Builder, n, stride int64) uint64 {
	base := b.AppendData() // address of the next data word
	data := make([]int64, n)
	for i := int64(0); i < n; i++ {
		next := (i + stride) % n
		data[i] = int64(base) + next*8
	}
	b.AppendData(data...)
	return base
}

// tableData builds n words of deterministic values.
func tableData(b *prog.Builder, n int64, f func(i int64) int64) uint64 {
	data := make([]int64, n)
	for i := int64(0); i < n; i++ {
		data[i] = f(i)
	}
	return b.AppendData(data...)
}
