// Package stats provides the small statistical helpers the experiment
// harness uses: means (arithmetic and geometric), dispersion, extrema,
// and a fixed-bucket histogram for occupancy distributions. The paper
// reports arithmetic means over benchmarks ("SPECINT" bars); geometric
// means are provided for rate-like quantities (IPC ratios).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values; non-positive
// inputs yield 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// SampleStdDev returns the sample (n-1) standard deviation — the
// estimator confidence intervals are built on.
func SampleStdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// zFor returns the two-sided normal critical value for a confidence
// level. The sampled-simulation engine's windows number in the tens to
// thousands, so the normal approximation to the t distribution is
// adequate (SMARTS makes the same approximation).
func zFor(conf float64) float64 {
	switch {
	case conf >= 0.99:
		return 2.576
	case conf >= 0.98:
		return 2.326
	case conf >= 0.95:
		return 1.960
	case conf >= 0.90:
		return 1.645
	case conf >= 0.80:
		return 1.282
	default:
		return 1.0 // ~68%
	}
}

// MeanCI returns the sample mean and the half-width of its two-sided
// confidence interval at level conf (e.g. 0.95): mean ± half. With fewer
// than two observations the half-width is 0 — the caller has no
// dispersion information, not a zero-width certainty.
func MeanCI(xs []float64, conf float64) (mean, half float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	half = zFor(conf) * SampleStdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, half
}

// MinMax returns the extrema (0,0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0..100) by linear
// interpolation on the sorted input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Histogram accumulates values into equal-width buckets over [Lo, Hi);
// out-of-range values clamp to the edge buckets. It renders as a compact
// ASCII bar chart, which the sdiq tools use for occupancy distributions.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int64
	count   int64
}

// NewHistogram returns a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Buckets)
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(n))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Buckets[i]++
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// String renders the histogram with proportional bars.
func (h *Histogram) String() string {
	var max int64 = 1
	for _, b := range h.Buckets {
		if b > max {
			max = b
		}
	}
	out := ""
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, b := range h.Buckets {
		bar := int(40 * b / max)
		out += fmt.Sprintf("%8.1f |%-40s %d\n", h.Lo+float64(i)*width, repeat('#', bar), b)
	}
	return out
}

func repeat(c byte, n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = c
	}
	return string(s)
}
