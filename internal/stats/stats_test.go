package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("mean = %f, want 4", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-9 {
		t.Errorf("geomean = %f, want 4", got)
	}
	if GeoMean([]float64{1, 0, 2}) != 0 {
		t.Error("non-positive input must yield 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean must be 0")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("single value stddev must be 0")
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-9 {
		t.Errorf("stddev = %f, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("minmax = %f,%f", min, max)
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Error("empty minmax must be 0,0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {200, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%.0f = %f, want %f", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
	// Input must not be mutated (Percentile sorts a copy).
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip pathological inputs whose sum overflows float64.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		if len(xs) == 0 {
			return Mean(xs) == 0
		}
		m := Mean(xs)
		min, max := MinMax(xs)
		return m >= min-1e-9 && m <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMeanBelowArithmetic(t *testing.T) {
	f := func(seed uint32) bool {
		xs := []float64{
			1 + float64(seed%100),
			1 + float64((seed>>8)%100),
			1 + float64((seed>>16)%100),
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d", h.Count())
	}
	// -3 clamps to bucket 0; 42 clamps to the last bucket.
	if h.Buckets[0] != 3 { // 0, 1, -3
		t.Errorf("bucket0 = %d, want 3", h.Buckets[0])
	}
	if h.Buckets[4] != 2 { // 9.9, 42
		t.Errorf("bucket4 = %d, want 2", h.Buckets[4])
	}
	if !strings.Contains(h.String(), "#") {
		t.Error("histogram rendering has no bars")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram(5, 5, 0) // invalid geometry gets repaired
	h.Add(5)
	if h.Count() != 1 || len(h.Buckets) != 1 {
		t.Errorf("degenerate histogram: %+v", h)
	}
}
