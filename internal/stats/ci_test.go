package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSampleStdDev(t *testing.T) {
	// {2,4,4,4,5,5,7,9}: population stddev 2, sample stddev sqrt(32/7).
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := math.Sqrt(32.0 / 7)
	if got := SampleStdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("SampleStdDev = %v, want %v", got, want)
	}
	if SampleStdDev(nil) != 0 || SampleStdDev([]float64{3}) != 0 {
		t.Error("degenerate inputs must yield 0")
	}
}

func TestMeanCIKnownValues(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	mean, half := MeanCI(xs, 0.95)
	if mean != 5 {
		t.Errorf("mean = %v, want 5", mean)
	}
	want := 1.960 * math.Sqrt(32.0/7) / math.Sqrt(8)
	if math.Abs(half-want) > 1e-12 {
		t.Errorf("half = %v, want %v", half, want)
	}
	// Wider confidence → wider interval.
	_, h99 := MeanCI(xs, 0.99)
	_, h90 := MeanCI(xs, 0.90)
	if !(h99 > half && half > h90) {
		t.Errorf("interval widths not monotone: 99%%=%v 95%%=%v 90%%=%v", h99, half, h90)
	}
	// Degenerate inputs: no dispersion information.
	if m, h := MeanCI([]float64{7}, 0.95); m != 7 || h != 0 {
		t.Errorf("single observation: got %v ± %v", m, h)
	}
}

// TestMeanCICoverage checks the interval actually covers the true mean at
// roughly the nominal rate on a known distribution.
func TestMeanCICoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const trials, n = 2000, 40
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = rng.NormFloat64()*3 + 10
		}
		mean, half := MeanCI(xs, 0.95)
		if mean-half <= 10 && 10 <= mean+half {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.98 {
		t.Errorf("95%% CI covered the true mean in %.1f%% of trials", rate*100)
	}
}
