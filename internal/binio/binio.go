// Package binio is the little-endian binary encoding the warm-state
// serializers share (internal/cache, internal/bpred, internal/emu and
// the artifact container in internal/ckpt). It exists because
// encoding/json cannot round-trip this state faithfully (float64
// payloads, unexported fields) and encoding/gob is not stable across
// versions; a fixed hand-rolled layout is, and the checkpoint store's
// bit-identity contract depends on that stability.
//
// Writer appends; Reader consumes with sticky error tracking, so a
// decode is a straight-line sequence of reads followed by one Err()
// check — a truncated or corrupt buffer surfaces as ErrCorrupt instead
// of a panic.
package binio

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrCorrupt reports a truncated or malformed buffer.
var ErrCorrupt = errors.New("binio: truncated or corrupt data")

// Writer accumulates a little-endian byte buffer.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the accumulated length.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bits (exact round-trip).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Raw appends bytes verbatim.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader consumes a buffer written by Writer. After any read past the
// end, the error sticks and every subsequent read returns zero values.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the sticky error (nil, or ErrCorrupt after a short read).
func (r *Reader) Err() error { return r.err }

// Remaining returns the unread byte count.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrCorrupt
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte bool (any non-zero is true).
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Raw reads n bytes verbatim (nil after a short read).
func (r *Reader) Raw(n int) []byte {
	if n < 0 {
		r.err = ErrCorrupt
		return nil
	}
	return r.take(n)
}
