// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md section 4 for the index), plus ablation
// benches for the design choices and microbenchmarks of the substrate.
//
// Figure benches run a reduced-budget version of the corresponding
// experiment and report the headline quantities as custom metrics (the
// paper's values appear in the metric names' documentation in
// EXPERIMENTS.md); regenerate the full-budget numbers with
// `go run ./cmd/sdiq -experiment all`.
package repro

import (
	"context"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/campaign"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/exp"
	"repro/internal/power"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/workload"
)

func mustEmu(b *testing.B, p *prog.Program) *emu.Emulator {
	b.Helper()
	e, err := emu.New(p)
	if err != nil {
		b.Fatal(err)
	}
	e.Restart = true
	return e
}

// benchBudget keeps per-iteration cost manageable; shapes are stable from
// ~50k instructions per run.
const benchBudget = 50_000

func runSuite(b *testing.B, techs []exp.Technique) *exp.SuiteResults {
	b.Helper()
	r := exp.NewRunner(benchBudget)
	s, err := r.RunSuite(techs)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable1Config exercises configuration construction and
// rendering (paper table 1).
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(exp.Table1(sim.DefaultConfig())) < 100 {
			b.Fatal("table 1 rendering broken")
		}
	}
}

// BenchmarkTable2CompileTime measures the analysis pass on the slowest
// benchmark, gcc (paper table 2: gcc dominated compile time).
func BenchmarkTable2CompileTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := workload.Gcc(42)
		b.StartTimer()
		if _, err := core.Instrument(p, core.Options{Mode: core.ModeNOOP}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6IPCLoss regenerates figure 6: IPC loss of the NOOP
// technique vs the abella hardware baseline.
func BenchmarkFigure6IPCLoss(b *testing.B) {
	var noop, abella float64
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []exp.Technique{exp.TechBaseline, exp.TechNOOP, exp.TechAbella})
		noop = s.Mean(func(bn string) float64 { return s.IPCLossPct(bn, exp.TechNOOP) })
		abella = s.Mean(func(bn string) float64 { return s.IPCLossPct(bn, exp.TechAbella) })
	}
	b.ReportMetric(noop, "NOOPloss%")     // paper: 2.2
	b.ReportMetric(abella, "abellaloss%") // paper: 3.1
}

// BenchmarkFigure7Occupancy regenerates figure 7: IQ occupancy reduction
// and the banks-off fractions of section 5.2.2.
func BenchmarkFigure7Occupancy(b *testing.B) {
	var occ, banksOff float64
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []exp.Technique{exp.TechBaseline, exp.TechNOOP})
		occ = s.Mean(func(bn string) float64 { return s.OccupancyReductionPct(bn, exp.TechNOOP) })
		banksOff = s.Mean(func(bn string) float64 { return s.BanksOffPct(bn, exp.TechNOOP) })
	}
	b.ReportMetric(occ, "occRed%")        // paper: 23
	b.ReportMetric(banksOff, "banksOff%") // paper: 37
}

// BenchmarkFigure8IQPower regenerates figure 8: IQ dynamic and static
// power savings with the nonEmpty and abella bars.
func BenchmarkFigure8IQPower(b *testing.B) {
	var dyn, stat, nonEmpty, abella float64
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []exp.Technique{exp.TechBaseline, exp.TechNOOP, exp.TechAbella})
		dyn = s.Mean(func(bn string) float64 { return s.Savings(bn, exp.TechNOOP).IQDynamicPct })
		stat = s.Mean(func(bn string) float64 { return s.Savings(bn, exp.TechNOOP).IQStaticPct })
		nonEmpty = s.Mean(s.NonEmptyPct)
		abella = s.Mean(func(bn string) float64 { return s.Savings(bn, exp.TechAbella).IQDynamicPct })
	}
	b.ReportMetric(dyn, "dyn%")           // paper: 47
	b.ReportMetric(stat, "static%")       // paper: 31
	b.ReportMetric(nonEmpty, "nonEmpty%") // paper: lower than dyn
	b.ReportMetric(abella, "abellaDyn%")  // paper: 39
}

// BenchmarkFigure9RegfilePower regenerates figure 9: integer register
// file savings.
func BenchmarkFigure9RegfilePower(b *testing.B) {
	var dyn, stat float64
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []exp.Technique{exp.TechBaseline, exp.TechNOOP})
		dyn = s.Mean(func(bn string) float64 { return s.Savings(bn, exp.TechNOOP).RFDynamicPct })
		stat = s.Mean(func(bn string) float64 { return s.Savings(bn, exp.TechNOOP).RFStaticPct })
	}
	b.ReportMetric(dyn, "dyn%")     // paper: 22
	b.ReportMetric(stat, "static%") // paper: 21
}

// BenchmarkFigure10Extensions regenerates figure 10: IPC loss of the
// Extension (tagging) and Improved (inter-procedural) techniques.
func BenchmarkFigure10Extensions(b *testing.B) {
	var ext, imp float64
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []exp.Technique{exp.TechBaseline, exp.TechExtension, exp.TechImproved})
		ext = s.Mean(func(bn string) float64 { return s.IPCLossPct(bn, exp.TechExtension) })
		imp = s.Mean(func(bn string) float64 { return s.IPCLossPct(bn, exp.TechImproved) })
	}
	b.ReportMetric(ext, "extLoss%") // paper: 1.7
	b.ReportMetric(imp, "impLoss%") // paper: <1.3
}

// BenchmarkFigure11ExtIQPower regenerates figure 11: IQ savings under
// Extension/Improved plus the section-6 overall processor saving.
func BenchmarkFigure11ExtIQPower(b *testing.B) {
	var dyn, stat, overall float64
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []exp.Technique{exp.TechBaseline, exp.TechExtension, exp.TechImproved})
		dyn = s.Mean(func(bn string) float64 { return s.Savings(bn, exp.TechExtension).IQDynamicPct })
		stat = s.Mean(func(bn string) float64 { return s.Savings(bn, exp.TechExtension).IQStaticPct })
		overall = s.Mean(func(bn string) float64 { return s.Savings(bn, exp.TechImproved).OverallDynamicPct })
	}
	b.ReportMetric(dyn, "dyn%")         // paper: 45
	b.ReportMetric(stat, "static%")     // paper: 30
	b.ReportMetric(overall, "overall%") // paper: ~11
}

// BenchmarkFigure12ExtRegfile regenerates figure 12: regfile savings
// under Extension/Improved.
func BenchmarkFigure12ExtRegfile(b *testing.B) {
	var dyn, stat float64
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []exp.Technique{exp.TechBaseline, exp.TechExtension})
		dyn = s.Mean(func(bn string) float64 { return s.Savings(bn, exp.TechExtension).RFDynamicPct })
		stat = s.Mean(func(bn string) float64 { return s.Savings(bn, exp.TechExtension).RFStaticPct })
	}
	b.ReportMetric(dyn, "dyn%")     // paper: 21
	b.ReportMetric(stat, "static%") // paper: 21
}

// --- ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationHintMode compares NOOP insertion against tagging on
// the call-dense benchmark most sensitive to dispatch slots.
func BenchmarkAblationHintMode(b *testing.B) {
	r := exp.NewRunner(benchBudget)
	bench, _ := workload.ByName("perlbmk")
	var noopIPC, tagIPC float64
	for i := 0; i < b.N; i++ {
		rn, err := r.Run(bench, exp.TechNOOP)
		if err != nil {
			b.Fatal(err)
		}
		rt, err := r.Run(bench, exp.TechExtension)
		if err != nil {
			b.Fatal(err)
		}
		noopIPC, tagIPC = rn.Stats.IPC(), rt.Stats.IPC()
	}
	b.ReportMetric(noopIPC, "noopIPC")
	b.ReportMetric(tagIPC, "tagIPC")
}

// BenchmarkAblationGatingOnly isolates the Folegnani-style wakeup gating
// from the resizing: the baseline run accounted under each scheme.
func BenchmarkAblationGatingOnly(b *testing.B) {
	bench, _ := workload.ByName("gzip")
	params := power.DefaultParams()
	var ungated, nonEmpty, gated float64
	for i := 0; i < b.N; i++ {
		st, err := sim.RunProgram(sim.DefaultConfig(), bench.Build(42), benchBudget)
		if err != nil {
			b.Fatal(err)
		}
		ungated = params.IQDynamic(&st, power.Ungated)
		nonEmpty = params.IQDynamic(&st, power.NonEmpty)
		gated = params.IQDynamic(&st, power.Gated)
	}
	b.ReportMetric(100*(1-nonEmpty/ungated), "nonEmptySave%")
	b.ReportMetric(100*(1-gated/ungated), "fullGateSave%")
}

// BenchmarkAblationBankSize sweeps the issue-queue bank granularity,
// which trades gating opportunity against control overhead.
func BenchmarkAblationBankSize(b *testing.B) {
	bench, _ := workload.ByName("gzip")
	for _, bankSize := range []int{4, 8, 16} {
		bankSize := bankSize
		b.Run(map[int]string{4: "bank4", 8: "bank8", 16: "bank16"}[bankSize], func(b *testing.B) {
			var banksOff float64
			for i := 0; i < b.N; i++ {
				p := bench.Build(42)
				if _, err := core.Instrument(p, core.Options{Mode: core.ModeTag}); err != nil {
					b.Fatal(err)
				}
				cfg := sim.DefaultConfig()
				cfg.IQ.BankSize = bankSize
				cfg.Control = sim.ControlHints
				st, err := sim.RunProgram(cfg, p, benchBudget)
				if err != nil {
					b.Fatal(err)
				}
				banksOff = 100 * (1 - st.AvgIQBanksOn()/float64(cfg.IQ.Entries/bankSize))
			}
			b.ReportMetric(banksOff, "banksOff%")
		})
	}
}

// BenchmarkAblationDispatchSlack sweeps the hint slack (EXPERIMENTS.md
// D4): zero slack maximises occupancy savings but bounces dispatch at
// region boundaries; a full dispatch group erases losses and savings
// alike.
func BenchmarkAblationDispatchSlack(b *testing.B) {
	bench, _ := workload.ByName("perlbmk")
	for _, slack := range []int{-1, 4, 8} {
		slack := slack
		name := map[int]string{-1: "slack0", 4: "slack4", 8: "slack8"}[slack]
		b.Run(name, func(b *testing.B) {
			var ipc, occ float64
			for i := 0; i < b.N; i++ {
				p := bench.Build(42)
				opt := core.Options{Mode: core.ModeNOOP, DispatchSlack: slack}
				if _, err := core.Instrument(p, opt); err != nil {
					b.Fatal(err)
				}
				cfg := sim.DefaultConfig()
				cfg.Control = sim.ControlHints
				st, err := sim.RunProgram(cfg, p, benchBudget)
				if err != nil {
					b.Fatal(err)
				}
				ipc, occ = st.IPC(), st.AvgIQOccupancy()
			}
			b.ReportMetric(ipc, "IPC")
			b.ReportMetric(occ, "occupancy")
		})
	}
}

// BenchmarkAblationCollapsibleQueue compares the paper's non-collapsible
// queue (holes waste capacity) against a compacting queue (section 3.1
// argues compaction costs energy; this quantifies the IPC it would buy).
func BenchmarkAblationCollapsibleQueue(b *testing.B) {
	bench, _ := workload.ByName("gzip")
	for _, collapsible := range []bool{false, true} {
		collapsible := collapsible
		name := map[bool]string{false: "nonCollapsible", true: "collapsible"}[collapsible]
		b.Run(name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig()
				cfg.IQ.Collapsible = collapsible
				st, err := sim.RunProgram(cfg, bench.Build(42), benchBudget)
				if err != nil {
					b.Fatal(err)
				}
				ipc = st.IPC()
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationAdaptiveVariant compares the IqRob64 abella baseline
// against the older Folegnani-González IQ-only resizing it derives from.
func BenchmarkAblationAdaptiveVariant(b *testing.B) {
	bench, _ := workload.ByName("twolf")
	configs := map[string]func(*sim.Config){
		"iqrob64":   func(c *sim.Config) {},
		"folegnani": func(c *sim.Config) { c.Adaptive = adaptive.FolegnaniConfig() },
	}
	for name, tweak := range configs {
		tweak := tweak
		b.Run(name, func(b *testing.B) {
			var ipc, occ float64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig()
				cfg.Control = sim.ControlAdaptive
				tweak(&cfg)
				st, err := sim.RunProgram(cfg, bench.Build(42), benchBudget)
				if err != nil {
					b.Fatal(err)
				}
				ipc, occ = st.IPC(), st.AvgIQOccupancy()
			}
			b.ReportMetric(ipc, "IPC")
			b.ReportMetric(occ, "occupancy")
		})
	}
}

// --- substrate microbenchmarks ---

// BenchmarkSimulatorThroughput measures timing-simulation speed in
// instructions per second on a representative workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	bench, _ := workload.ByName("gzip")
	p := bench.Build(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunProgram(sim.DefaultConfig(), p, 100_000); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(100_000) // bytes stand in for instructions: B/s = inst/s
}

// BenchmarkEmulatorThroughput measures functional-emulation speed.
func BenchmarkEmulatorThroughput(b *testing.B) {
	bench, _ := workload.ByName("crafty")
	p := bench.Build(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := mustEmu(b, p)
		b.StartTimer()
		for n := 0; n < 100_000; n++ {
			if _, ok := e.Next(); !ok {
				b.Fatal("halted")
			}
		}
	}
	b.SetBytes(100_000)
}

// BenchmarkEmulatorDecodeCache measures the decoded-dispatch emulator
// path explicitly (the default; EmulatorThroughput tracks the same path
// for trajectory continuity). The ratio EmulatorUncached/
// EmulatorDecodeCache is the decode cache's realised speedup, recorded
// as decode_cache_speedup in BENCH_simcore.json.
func BenchmarkEmulatorDecodeCache(b *testing.B) {
	bench, _ := workload.ByName("crafty")
	p := bench.Build(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := mustEmu(b, p)
		e.SetDecode(true)
		b.StartTimer()
		for n := 0; n < 100_000; n++ {
			if _, ok := e.Next(); !ok {
				b.Fatal("halted")
			}
		}
	}
	b.SetBytes(100_000)
}

// BenchmarkEmulatorUncached measures the reference interpreter — the
// per-instruction re-decode path the decode cache replaces.
func BenchmarkEmulatorUncached(b *testing.B) {
	bench, _ := workload.ByName("crafty")
	p := bench.Build(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := mustEmu(b, p)
		e.SetDecode(false)
		b.StartTimer()
		for n := 0; n < 100_000; n++ {
			if _, ok := e.Next(); !ok {
				b.Fatal("halted")
			}
		}
	}
	b.SetBytes(100_000)
}

// BenchmarkSampledCampaign measures end-to-end sampled-campaign
// throughput on the standard three-benchmark sweep — the quantity the
// sampled-simulation engine exists to raise. Compare against
// SimulatorThroughput in BENCH_simcore.json for the realised speedup
// (inst/s here are campaign instructions per wall second, all phases
// included).
func BenchmarkSampledCampaign(b *testing.B) {
	const budget = 500_000
	spec := campaign.DefaultSpec(budget)
	spec.Benchmarks = []string{"gzip", "mcf", "crafty"}
	spec.Techniques = []campaign.Technique{campaign.TechBaseline}
	d := campaign.DefaultSampling()
	spec.Sampling = &d
	eng := &campaign.Engine{Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(spec.Benchmarks)) * budget)
}

// ckptSweepSpec is the checkpoint store's acceptance workload: an
// 8-cell IQ sweep of one sampled benchmark. Every cell shares one
// warming identity (the IQ axis is excluded from the checkpoint key),
// so with a store the grid warms once; without, eight times. The regime
// is sparse (2k windows every 200k) — the production shape where
// fast-forward+warming dominate and the store has the most to amortize.
func ckptSweepSpec() campaign.Spec {
	spec := campaign.DefaultSpec(1_000_000)
	spec.Name = "ckpt-sweep"
	spec.Benchmarks = []string{"gzip"}
	spec.Techniques = []campaign.Technique{campaign.TechBaseline}
	spec.Axes = []campaign.Axis{{Name: "iq.entries", Values: []int{16, 24, 32, 40, 48, 56, 64, 80}}}
	spec.Sampling = &campaign.Sampling{Window: 2_000, Period: 200_000, Warmup: 20_000, DetailWarmup: 1_000}
	return spec
}

// BenchmarkSweepNoCkpt runs the acceptance sweep warm-from-scratch:
// every cell pays its own fast-forward and functional warming.
func BenchmarkSweepNoCkpt(b *testing.B) {
	spec := ckptSweepSpec()
	eng := &campaign.Engine{Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(8 * 1_000_000)
}

// BenchmarkSweepCkpt runs the same sweep against a checkpoint store:
// the first cell generates the artifact, the rest resume from it. The
// ratio SweepNoCkpt/SweepCkpt is the store's realised speedup, recorded
// as checkpoint_speedup in BENCH_simcore.json (acceptance gate: >= 3x).
func BenchmarkSweepCkpt(b *testing.B) {
	spec := ckptSweepSpec()
	store, err := ckpt.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	eng := &campaign.Engine{Workers: 1, Ckpt: store}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(8 * 1_000_000)
}

// BenchmarkLockstepSweep runs the acceptance sweep with lockstep
// batching and no store: ONE emulator + warming stream feeds all eight
// detailed cores, so the shared functional work is paid once instead of
// eight times. The ratio SweepNoCkpt/LockstepSweep is the lockstep
// engine's realised speedup, recorded as lockstep_speedup in
// BENCH_simcore.json (acceptance gate: >= 2x on this sweep).
func BenchmarkLockstepSweep(b *testing.B) {
	spec := ckptSweepSpec()
	eng := &campaign.Engine{Workers: 1, Lockstep: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(8 * 1_000_000)
}

// BenchmarkAnalysisPass measures the whole compiler pass across the
// suite (the table-2 quantity, aggregated).
func BenchmarkAnalysisPass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workload.Suite() {
			b.StopTimer()
			p := w.Build(42)
			b.StartTimer()
			if _, err := core.Instrument(p, core.Options{Mode: core.ModeTag}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
